"""Tests for ASCII plotting and the paper-claims validator."""

import math

import pytest

from repro.analysis.plot import ascii_plot, plot_figure6_panel
from repro.analysis.validate import (
    COMPONENT_COUNTS,
    LASER_POWER_W,
    UNIFORM_SATURATION,
    Expectation,
    render_report,
    validate_tables,
    validate_uniform_saturation,
)


class TestAsciiPlot:
    def test_basic_plot_contains_markers_and_legend(self):
        text = ascii_plot({"a": [(0, 1.0), (10, 5.0)],
                           "b": [(0, 2.0), (10, 3.0)]},
                          title="t", xlabel="load", ylabel="lat")
        assert "t" in text
        assert "o=a" in text and "x=b" in text
        assert "load" in text

    def test_log_scale(self):
        text = ascii_plot({"a": [(0, 1.0), (1, 1000.0)]}, log_y=True)
        assert "1e+03" in text or "1000" in text

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 0.0)]}, log_y=True)

    def test_nan_points_dropped(self):
        text = ascii_plot({"a": [(0, 1.0), (1, math.nan), (2, 2.0)]})
        assert text  # does not raise

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, math.nan)]})

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 1.0)]}, width=4)

    def test_figure6_panel_plot(self):
        from repro.experiments.figure6 import run_figure6
        from repro.macrochip.config import small_test_config

        res = run_figure6(small_test_config(4, 4), window_ns=80.0,
                          patterns=["uniform"],
                          networks=["point_to_point", "token_ring"],
                          load_grids={"uniform": [0.05, 0.3]})
        text = plot_figure6_panel(res, "uniform")
        assert "Figure 6 [uniform]" in text
        with pytest.raises(KeyError):
            plot_figure6_panel(res, "transpose")


class TestValidator:
    def test_expectation_banding(self):
        exp = Expectation("x", "1", 0.5, 1.5)
        assert exp.check(1.0).ok
        assert not exp.check(2.0).ok
        assert exp.check(2.0).verdict == "WARN"

    def test_tables_all_pass(self):
        findings = validate_tables()
        assert findings
        assert all(f.ok for f in findings)

    def test_saturation_bands(self):
        findings = validate_uniform_saturation({
            "point_to_point": 0.94,
            "token_ring": 0.40,
            "circuit_switched": 0.30,  # way over the paper band
        })
        by_claim = {f.expectation.claim: f for f in findings}
        assert by_claim[UNIFORM_SATURATION["point_to_point"].claim].ok
        assert not by_claim[
            UNIFORM_SATURATION["circuit_switched"].claim].ok

    def test_report_renders_counts(self):
        findings = validate_tables()
        text = render_report(findings)
        assert "PASS" in text
        assert "%d/%d" % (len(findings), len(findings)) in text

    def test_expectation_tables_cover_all_networks(self):
        assert len(UNIFORM_SATURATION) == 5
        assert len(LASER_POWER_W) == 7
        assert len(COMPONENT_COUNTS) >= 8
