"""Tests for the closed-loop coherence trace replay."""

import pytest

from repro.cpu.coherence import CoherenceOp, OpKind
from repro.cpu.trace import CoherenceTrace
from repro.macrochip.config import small_test_config
from repro.workloads.replay import TraceReplayer, replay


@pytest.fixture
def cfg():
    return small_test_config(2, 2)


def make_trace(cfg, ops_by_core):
    trace = CoherenceTrace("unit", cfg.num_cores)
    for core, ops in ops_by_core.items():
        trace.ops_by_core[core] = ops
    return trace


def gets(core, requester, home, gap=10, owner=None):
    return CoherenceOp(core=core, gap_cycles=gap, kind=OpKind.GET_S,
                       requester=requester, home=home, owner=owner)


def getm(core, requester, home, sharers=(), gap=10):
    return CoherenceOp(core=core, gap_cycles=gap, kind=OpKind.GET_M,
                       requester=requester, home=home, sharers=sharers)


def test_single_gets_latency(cfg):
    """One GetS: request + directory + memory + data response."""
    trace = make_trace(cfg, {0: [gets(0, 0, 1)]})
    result = replay(trace, "point_to_point", cfg)
    assert result.ops_completed == 1
    assert result.messages_sent == 2
    # lower bound: the directory + memory processing alone
    min_ns = (cfg.directory_latency_cycles
              + cfg.memory_latency_cycles) * 0.2
    assert result.mean_op_latency_ns >= min_ns


def test_cache_to_cache_has_three_messages(cfg):
    trace = make_trace(cfg, {0: [gets(0, 0, 1, owner=2)]})
    result = replay(trace, "point_to_point", cfg)
    assert result.messages_sent == 3


def test_getm_with_sharers_counts_messages(cfg):
    trace = make_trace(cfg, {0: [getm(0, 0, 1, sharers=(2, 3))]})
    result = replay(trace, "point_to_point", cfg)
    # req + 2 inv + 2 ack + data
    assert result.messages_sent == 6


def test_ops_issue_in_order_with_gaps(cfg):
    """The second op waits for the first to complete plus its gap."""
    trace = make_trace(cfg, {0: [gets(0, 0, 1, gap=10),
                                 gets(0, 0, 1, gap=1000)]})
    result = replay(trace, "point_to_point", cfg)
    assert result.ops_completed == 2
    # runtime at least gap1 + lat1 + gap2 + lat2
    assert result.runtime_ps >= 1000 * cfg.cycle_ps


def test_writeback_does_not_stall(cfg):
    wb = CoherenceOp(core=0, gap_cycles=0, kind=OpKind.WRITEBACK,
                     requester=0, home=1)
    trace = make_trace(cfg, {0: [wb, gets(0, 0, 1, gap=0)]})
    result = replay(trace, "point_to_point", cfg)
    # the writeback is excluded from op latency but its message is sent
    assert result.ops_completed == 1
    assert result.messages_sent == 3


def test_cores_run_concurrently(cfg):
    ops = {core: [gets(core, core // cfg.cores_per_site, 1)]
           for core in range(cfg.num_cores)}
    trace = make_trace(cfg, ops)
    result = replay(trace, "point_to_point", cfg)
    assert result.ops_completed == cfg.num_cores
    # concurrent execution: far faster than serial sum of latencies
    assert result.runtime_ns < cfg.num_cores * result.mean_op_latency_ns


def test_mshr_limit_serializes_site(cfg):
    limited = cfg.with_overrides(mshrs_per_site=1)
    ops = {core: [gets(core, 0, 1)] for core in range(cfg.cores_per_site)}
    trace_l = make_trace(limited, ops)
    r_limited = replay(trace_l, "point_to_point", limited)
    trace_u = make_trace(cfg, ops)
    r_unlimited = replay(trace_u, "point_to_point", cfg)
    assert r_limited.runtime_ps > r_unlimited.runtime_ps


def test_energy_accounted(cfg):
    trace = make_trace(cfg, {0: [gets(0, 0, 1)]})
    result = replay(trace, "limited_point_to_point", cfg)
    assert result.energy_by_category.get("optical", 0) > 0


def test_all_networks_replay_the_same_trace(cfg):
    from repro.networks.factory import FIGURE7_NETWORKS

    ops = {core: [getm(core, core // cfg.cores_per_site,
                       (core + 1) % cfg.num_sites)]
           for core in range(cfg.num_cores)}
    for net in FIGURE7_NETWORKS:
        trace = make_trace(cfg, ops)
        result = replay(trace, net, cfg)
        assert result.ops_completed == cfg.num_cores, net


def test_intra_site_op_uses_loopback(cfg):
    trace = make_trace(cfg, {0: [gets(0, 0, 0)]})  # home == requester
    result = replay(trace, "point_to_point", cfg)
    # directory + memory + two loopback hops, well under a microsecond
    assert result.mean_op_latency_ns < 50.0
