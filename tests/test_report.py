"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import (
    figure6_markdown,
    markdown_table,
    suite_markdown,
)
from repro.experiments.evaluation import run_suite
from repro.experiments.figure6 import run_figure6
from repro.macrochip.config import small_test_config


def test_markdown_table_shape():
    text = markdown_table(["A", "B"], [["1", "2"], ["3", "4"]])
    lines = text.splitlines()
    assert lines[0] == "| A | B |"
    assert lines[1] == "|---|---|"
    assert len(lines) == 4


def test_markdown_table_validation():
    with pytest.raises(ValueError):
        markdown_table([], [])
    with pytest.raises(ValueError):
        markdown_table(["A"], [["1", "2"]])


def test_suite_markdown_end_to_end():
    cfg = small_test_config(2, 2)
    suite = run_suite("smoke", config=cfg,
                      networks=["point_to_point", "circuit_switched",
                                "limited_point_to_point"],
                      workloads=["Barnes"])
    text = suite_markdown(suite)
    assert "### Figure 7" in text
    assert "### Figure 8" in text
    assert "### Figure 9" in text
    assert "### Figure 10" in text
    assert "Barnes" in text
    assert "| Workload |" in text


def test_figure6_markdown():
    cfg = small_test_config(4, 4)
    res = run_figure6(cfg, window_ns=80.0, patterns=["uniform"],
                      networks=["point_to_point"],
                      load_grids={"uniform": [0.05]})
    text = figure6_markdown(res)
    assert "### Figure 6" in text
    assert "Point-to-Point" in text
