"""Additional two-phase network details: slot geometry, arbitration
pipeline constants, and waste accounting under controlled scenarios."""

import pytest

from repro.core.engine import Simulator
from repro.core.units import propagation_ps
from repro.macrochip.config import scaled_config
from repro.networks.base import Packet
from repro.networks.two_phase import ARB_SLOT_PS, TwoPhaseArbitratedNetwork


CFG = scaled_config()


@pytest.fixture
def net(sim):
    return TwoPhaseArbitratedNetwork(CFG, sim)


def test_arbitration_constants_follow_layout(net):
    assert net.request_prop_ps == propagation_ps(CFG.layout.row_span_cm)
    assert net.notify_prop_ps == propagation_ps(CFG.layout.col_span_cm)
    assert ARB_SLOT_PS == 400  # section 4.3: 0.4 ns arbitration slots


def test_slot_duration_rounds_up_to_basic_slots(net):
    # 40 GB/s channel: 16 B = 0.4 ns exactly, 17 B rounds to 0.8 ns
    assert net.slot_duration_ps(16) == ARB_SLOT_PS
    assert net.slot_duration_ps(17) == 2 * ARB_SLOT_PS
    assert net.slot_duration_ps(72) == 2000  # 1.8 ns -> 5 slots


def test_channel_reservation_is_fifo(net, sim):
    """Requests from the same row to one destination get consecutive
    slots in arrival order."""
    packets = [Packet(src, 32, 64) for src in (0, 1, 2)]
    for p in packets:
        net.inject(p)
    sim.run()
    # compare slot-end times (delivery minus each source's flight time)
    ends = [p.t_deliver - net.propagation_ps(p.src, p.dst)
            for p in packets]
    assert ends == sorted(ends)
    assert ends[1] - ends[0] == net.slot_duration_ps(64)
    assert ends[2] - ends[1] == net.slot_duration_ps(64)


def test_waste_counts_are_exclusive(net, sim):
    """granted + wasted == total slot attempts."""
    for src in range(4):
        for dst in (8, 16, 24, 32):
            net.inject(Packet(src, dst, 64))
    sim.run()
    assert net.stats.delivered_packets == 16
    assert net.granted_slots == 16
    attempts = net.granted_slots + net.wasted_slots
    assert attempts >= 16


def test_control_message_uses_one_slot(net, sim):
    p = Packet(0, 8, 8)  # coherence control message
    net.inject(p)
    sim.run()
    overhead = (net.request_prop_ps + ARB_SLOT_PS + net.notify_prop_ps
                + net.switch_setup_ps)
    assert p.t_deliver == overhead + ARB_SLOT_PS + net.propagation_ps(0, 8)


def test_intra_row_destination_also_arbitrates(net, sim):
    """Even a same-row destination goes through the shared channel (the
    topology has no special row-local path)."""
    p = Packet(0, 1, 64)
    net.inject(p)
    sim.run()
    assert p.t_deliver > net.request_prop_ps


def test_reconfig_window_enforced_between_column_switches(net, sim):
    """Consecutive grants to different destinations in one column are
    separated by at least the retuning window."""
    p1 = Packet(0, 8, 64)
    p2 = Packet(0, 16, 64)
    p3 = Packet(0, 8, 64)
    for p in (p1, p2, p3):
        net.inject(p)
    sim.run()
    d1, d2 = sorted([p1.t_deliver, p2.t_deliver])[:2]
    assert d2 - d1 >= net.tree_reconfig_ps
