"""Tests for the photonic technology substrate: technology constants,
component models, link budgets, and laser power."""

import pytest

from repro.core.units import db_to_factor
from repro.photonics import components as comp
from repro.photonics import loss
from repro.photonics.power import (
    LaserPowerEstimate,
    laser_power_w,
    router_energy_pj,
    transmit_energy_pj,
)
from repro.photonics.technology import DEFAULT_TECHNOLOGY, Technology, table1_rows


class TestTechnology:
    def test_table1_values(self):
        t = DEFAULT_TECHNOLOGY
        assert t.modulator_energy_fj_per_bit == 35.0
        assert t.receiver_energy_fj_per_bit == 65.0
        assert t.laser_energy_fj_per_bit == 50.0
        assert t.modulator_loss_db == 4.0
        assert t.opxc_loss_db == 1.2
        assert t.switch_loss_db == 1.0
        assert t.drop_filter_drop_loss_db == 1.5
        assert t.drop_filter_through_loss_db == 0.1

    def test_wavelength_bandwidth(self):
        # 20 Gb/s -> 2.5 GB/s per wavelength
        assert DEFAULT_TECHNOLOGY.wavelength_bandwidth_gb_per_s == 2.5

    def test_link_margin_is_21db(self):
        # 0 dBm launch, -21 dBm sensitivity
        assert DEFAULT_TECHNOLOGY.link_margin_db == 21.0

    def test_overrides_do_not_mutate_default(self):
        t2 = DEFAULT_TECHNOLOGY.with_overrides(switch_loss_db=2.0)
        assert t2.switch_loss_db == 2.0
        assert DEFAULT_TECHNOLOGY.switch_loss_db == 1.0

    def test_table1_rows_cover_all_components(self):
        names = [r[0] for r in table1_rows()]
        assert names == ["Modulator", "OPxC", "Waveguide", "Drop Filter",
                         "Receiver", "Switch", "Laser"]


class TestComponents:
    def test_modulator_active_vs_off(self):
        active = comp.modulator(active=True)
        off = comp.modulator(active=False)
        assert active.loss_db == 4.0
        assert off.loss_db == 0.1
        assert active.dynamic_energy_fj_per_bit == 35.0
        assert off.dynamic_energy_fj_per_bit == 0.0

    def test_waveguide_layers(self):
        assert comp.waveguide(10.0, layer="global").loss_db == pytest.approx(1.0)
        assert comp.waveguide(10.0, layer="local").loss_db == pytest.approx(5.0)
        with pytest.raises(ValueError):
            comp.waveguide(1.0, layer="bogus")
        with pytest.raises(ValueError):
            comp.waveguide(-1.0)

    def test_drop_filter_two_ports(self):
        assert comp.drop_filter(selected=True).loss_db == 1.5
        assert comp.drop_filter(selected=False).loss_db == 0.1

    def test_path_accumulates_loss(self):
        path = comp.OpticalPath()
        path.append(comp.modulator())
        path.append(comp.opxc_coupler())
        assert path.total_loss_db == pytest.approx(5.2)

    def test_path_describe_mentions_total(self):
        path = comp.OpticalPath([comp.modulator()])
        assert "TOTAL" in path.describe()


class TestLinkBudget:
    def test_canonical_unswitched_link_is_17db(self):
        # section 2: "the optical link loss for an un-switched link is 17 dB"
        path = loss.unswitched_link()
        assert path.total_loss_db == pytest.approx(17.0, abs=0.11)

    def test_canonical_link_leaves_4db_margin(self):
        budget = loss.budget_for(loss.unswitched_link())
        assert budget.margin_db == pytest.approx(4.0, abs=0.11)
        assert budget.closes

    def test_overloaded_link_does_not_close(self):
        path = loss.unswitched_link()
        for _ in range(10):
            path.append(comp.broadband_switch())
        assert not loss.budget_for(path).closes

    def test_token_ring_extra_loss(self):
        # 128 pass-by rings x 0.1 dB = 12.8 dB -> ~19x (Table 5)
        db = loss.token_ring_extra_loss_db(128)
        assert db == pytest.approx(12.8)
        assert db_to_factor(db) == pytest.approx(19.05, abs=0.01)

    def test_circuit_switched_extra_loss(self):
        # 31 hops x 0.5 dB (section 4.5)
        assert loss.circuit_switched_extra_loss_db(31) == pytest.approx(15.5)

    def test_two_phase_extra_loss(self):
        assert loss.two_phase_extra_loss_db(7) == pytest.approx(7.0)
        assert loss.two_phase_extra_loss_db(6) == pytest.approx(6.0)

    def test_snoop_loss_factor_of_8(self):
        assert db_to_factor(loss.snoop_extra_loss_db(8)) == pytest.approx(8.0)


class TestPower:
    def test_p2p_laser_power_8w(self):
        # Table 5: point-to-point, 8192 wavelengths, no extra loss -> ~8 W
        assert laser_power_w(8192, 0.0) == pytest.approx(8.192)

    def test_token_ring_laser_power_155w(self):
        # Table 5: 8192 feeds at 19x -> ~155 W
        assert laser_power_w(8192, 12.8) == pytest.approx(156.0, abs=1.0)

    def test_two_phase_laser_power(self):
        # Table 5: data 41 W; ALT 65.5 W
        assert laser_power_w(8192, 7.0) == pytest.approx(41.0, abs=0.5)
        assert laser_power_w(16384, 6.0) == pytest.approx(65.2, abs=0.5)

    def test_estimate_object(self):
        est = LaserPowerEstimate("x", 100, 10.0)
        assert est.loss_factor == pytest.approx(10.0)
        assert est.laser_power_w == pytest.approx(1.0)

    def test_transmit_energy_is_150fj_per_bit(self):
        # modulator 35 + receiver 65 + laser 50 = 150 fJ/bit
        assert transmit_energy_pj(1) == pytest.approx(1.2)  # 8 bits
        assert transmit_energy_pj(64) == pytest.approx(76.8)

    def test_router_energy_60pj_per_byte(self):
        assert router_energy_pj(64) == pytest.approx(3840.0)


class TestSignaling:
    """The NRZ/PAM4 multilevel-signaling knob (extension)."""

    def test_nrz_is_the_default_and_bit_identical(self):
        t = DEFAULT_TECHNOLOGY
        assert t.signaling == "nrz"
        assert t.bits_per_symbol == 1
        assert t.effective_bit_rate_gbps == 20.0
        assert t.wavelength_bandwidth_gb_per_s == 2.5
        # dispatch properties reproduce the paper's Table 1 fields exactly
        assert t.modulation_energy_fj_per_bit == t.modulator_energy_fj_per_bit
        assert t.detection_energy_fj_per_bit == t.receiver_energy_fj_per_bit
        assert t.signaling_penalty_db == 0.0
        assert (t.effective_receiver_sensitivity_dbm
                == t.receiver_sensitivity_dbm)
        assert t.link_margin_db == 21.0
        assert transmit_energy_pj(64, t) == 76.8

    def test_pam4_doubles_rate_per_wavelength(self):
        t = DEFAULT_TECHNOLOGY.with_overrides(signaling="pam4")
        assert t.bits_per_symbol == 2
        assert t.effective_bit_rate_gbps == 40.0
        assert t.wavelength_bandwidth_gb_per_s == 5.0

    def test_pam4_energy_per_bit_is_higher(self):
        t = DEFAULT_TECHNOLOGY.with_overrides(signaling="pam4")
        assert t.modulation_energy_fj_per_bit == 55.0
        assert t.detection_energy_fj_per_bit == 110.0
        # 64 B x 8 x (55 + 110 + 50) fJ/bit = 110.08 pJ vs NRZ's 76.8
        assert transmit_energy_pj(64, t) == pytest.approx(110.08)
        assert transmit_energy_pj(64, t) > transmit_energy_pj(64)

    def test_pam4_eye_penalty_shrinks_link_margin(self):
        from repro.photonics.technology import pam4_eye_penalty_db

        t = DEFAULT_TECHNOLOGY.with_overrides(signaling="pam4")
        assert t.signaling_penalty_db == 4.8
        assert t.effective_receiver_sensitivity_dbm == pytest.approx(-16.2)
        assert t.link_margin_db == pytest.approx(16.2)
        # the default rounds the ideal 10*log10(3) = 4.77 dB
        assert pam4_eye_penalty_db() == pytest.approx(4.771, abs=1e-3)

    def test_canonical_link_closes_nrz_but_not_pam4(self):
        """The 17 dB unswitched link leaves 4 dB of NRZ margin; the PAM4
        eye penalty eats it — the budget surfaces the tradeoff."""
        t4 = DEFAULT_TECHNOLOGY.with_overrides(signaling="pam4")
        nrz = loss.budget_for(loss.unswitched_link())
        pam4 = loss.budget_for(loss.unswitched_link(t4), t4)
        assert nrz.closes
        assert nrz.margin_db == pytest.approx(4.0)
        assert not pam4.closes
        assert pam4.margin_db == pytest.approx(nrz.margin_db - 4.8)

    def test_pam4_halves_wavelengths_for_fixed_bandwidth(self):
        from repro.photonics.wdm import (waveguides_for_wavelengths,
                                         wavelengths_for_bandwidth)

        t4 = DEFAULT_TECHNOLOGY.with_overrides(signaling="pam4")
        assert wavelengths_for_bandwidth(320.0) == 128
        assert wavelengths_for_bandwidth(320.0, t4) == 64
        assert waveguides_for_wavelengths(128, 8) == 16
        assert waveguides_for_wavelengths(64, 8) == 8

    def test_unknown_signaling_rejected(self):
        with pytest.raises(ValueError):
            Technology(signaling="qam16")

    def test_signaling_survives_config_roundtrip(self):
        from repro.macrochip.config import scaled_config
        from repro.macrochip.configio import config_from_dict, config_to_dict

        cfg = scaled_config()
        cfg = cfg.with_overrides(
            tech=cfg.tech.with_overrides(signaling="pam4"))
        again = config_from_dict(config_to_dict(cfg, full=True))
        assert again.tech.signaling == "pam4"
        assert again == cfg

    def test_hermes_extra_loss(self):
        # 4-way broadcast split (6.02 dB) + 24 ring passes at 0.1 dB
        assert loss.hermes_extra_loss_db(4, 24) == pytest.approx(
            db_to_factor(0) * 0 + 8.420599913279624)
        # default rings_passed derives from the cluster size
        assert loss.hermes_extra_loss_db(4) == loss.hermes_extra_loss_db(4, 24)
