"""Tests for the photonic technology substrate: technology constants,
component models, link budgets, and laser power."""

import pytest

from repro.core.units import db_to_factor
from repro.photonics import components as comp
from repro.photonics import loss
from repro.photonics.power import (
    LaserPowerEstimate,
    laser_power_w,
    router_energy_pj,
    transmit_energy_pj,
)
from repro.photonics.technology import DEFAULT_TECHNOLOGY, Technology, table1_rows


class TestTechnology:
    def test_table1_values(self):
        t = DEFAULT_TECHNOLOGY
        assert t.modulator_energy_fj_per_bit == 35.0
        assert t.receiver_energy_fj_per_bit == 65.0
        assert t.laser_energy_fj_per_bit == 50.0
        assert t.modulator_loss_db == 4.0
        assert t.opxc_loss_db == 1.2
        assert t.switch_loss_db == 1.0
        assert t.drop_filter_drop_loss_db == 1.5
        assert t.drop_filter_through_loss_db == 0.1

    def test_wavelength_bandwidth(self):
        # 20 Gb/s -> 2.5 GB/s per wavelength
        assert DEFAULT_TECHNOLOGY.wavelength_bandwidth_gb_per_s == 2.5

    def test_link_margin_is_21db(self):
        # 0 dBm launch, -21 dBm sensitivity
        assert DEFAULT_TECHNOLOGY.link_margin_db == 21.0

    def test_overrides_do_not_mutate_default(self):
        t2 = DEFAULT_TECHNOLOGY.with_overrides(switch_loss_db=2.0)
        assert t2.switch_loss_db == 2.0
        assert DEFAULT_TECHNOLOGY.switch_loss_db == 1.0

    def test_table1_rows_cover_all_components(self):
        names = [r[0] for r in table1_rows()]
        assert names == ["Modulator", "OPxC", "Waveguide", "Drop Filter",
                         "Receiver", "Switch", "Laser"]


class TestComponents:
    def test_modulator_active_vs_off(self):
        active = comp.modulator(active=True)
        off = comp.modulator(active=False)
        assert active.loss_db == 4.0
        assert off.loss_db == 0.1
        assert active.dynamic_energy_fj_per_bit == 35.0
        assert off.dynamic_energy_fj_per_bit == 0.0

    def test_waveguide_layers(self):
        assert comp.waveguide(10.0, layer="global").loss_db == pytest.approx(1.0)
        assert comp.waveguide(10.0, layer="local").loss_db == pytest.approx(5.0)
        with pytest.raises(ValueError):
            comp.waveguide(1.0, layer="bogus")
        with pytest.raises(ValueError):
            comp.waveguide(-1.0)

    def test_drop_filter_two_ports(self):
        assert comp.drop_filter(selected=True).loss_db == 1.5
        assert comp.drop_filter(selected=False).loss_db == 0.1

    def test_path_accumulates_loss(self):
        path = comp.OpticalPath()
        path.append(comp.modulator())
        path.append(comp.opxc_coupler())
        assert path.total_loss_db == pytest.approx(5.2)

    def test_path_describe_mentions_total(self):
        path = comp.OpticalPath([comp.modulator()])
        assert "TOTAL" in path.describe()


class TestLinkBudget:
    def test_canonical_unswitched_link_is_17db(self):
        # section 2: "the optical link loss for an un-switched link is 17 dB"
        path = loss.unswitched_link()
        assert path.total_loss_db == pytest.approx(17.0, abs=0.11)

    def test_canonical_link_leaves_4db_margin(self):
        budget = loss.budget_for(loss.unswitched_link())
        assert budget.margin_db == pytest.approx(4.0, abs=0.11)
        assert budget.closes

    def test_overloaded_link_does_not_close(self):
        path = loss.unswitched_link()
        for _ in range(10):
            path.append(comp.broadband_switch())
        assert not loss.budget_for(path).closes

    def test_token_ring_extra_loss(self):
        # 128 pass-by rings x 0.1 dB = 12.8 dB -> ~19x (Table 5)
        db = loss.token_ring_extra_loss_db(128)
        assert db == pytest.approx(12.8)
        assert db_to_factor(db) == pytest.approx(19.05, abs=0.01)

    def test_circuit_switched_extra_loss(self):
        # 31 hops x 0.5 dB (section 4.5)
        assert loss.circuit_switched_extra_loss_db(31) == pytest.approx(15.5)

    def test_two_phase_extra_loss(self):
        assert loss.two_phase_extra_loss_db(7) == pytest.approx(7.0)
        assert loss.two_phase_extra_loss_db(6) == pytest.approx(6.0)

    def test_snoop_loss_factor_of_8(self):
        assert db_to_factor(loss.snoop_extra_loss_db(8)) == pytest.approx(8.0)


class TestPower:
    def test_p2p_laser_power_8w(self):
        # Table 5: point-to-point, 8192 wavelengths, no extra loss -> ~8 W
        assert laser_power_w(8192, 0.0) == pytest.approx(8.192)

    def test_token_ring_laser_power_155w(self):
        # Table 5: 8192 feeds at 19x -> ~155 W
        assert laser_power_w(8192, 12.8) == pytest.approx(156.0, abs=1.0)

    def test_two_phase_laser_power(self):
        # Table 5: data 41 W; ALT 65.5 W
        assert laser_power_w(8192, 7.0) == pytest.approx(41.0, abs=0.5)
        assert laser_power_w(16384, 6.0) == pytest.approx(65.2, abs=0.5)

    def test_estimate_object(self):
        est = LaserPowerEstimate("x", 100, 10.0)
        assert est.loss_factor == pytest.approx(10.0)
        assert est.laser_power_w == pytest.approx(1.0)

    def test_transmit_energy_is_150fj_per_bit(self):
        # modulator 35 + receiver 65 + laser 50 = 150 fJ/bit
        assert transmit_energy_pj(1) == pytest.approx(1.2)  # 8 bits
        assert transmit_energy_pj(64) == pytest.approx(76.8)

    def test_router_energy_60pj_per_byte(self):
        assert router_energy_pj(64) == pytest.approx(3840.0)
