"""Tests for the token-ring optical crossbar (Corona adaptation)."""

import pytest

from repro.networks.base import Packet
from repro.networks.token_ring import TokenRingCrossbar


@pytest.fixture
def net(paper_config, sim):
    return TokenRingCrossbar(paper_config, sim)


def test_bundle_is_full_site_ingress(net):
    # 128 receivers x 2.5 GB/s = 320 GB/s per destination bundle
    assert net.bundle_gb_per_s == pytest.approx(320.0)


def test_rotation_near_80_cycles(net):
    # the paper's scaled token round trip: 80 cycles = 16 ns
    assert 14000 <= net.rotation_ps <= 17000
    assert net.hop_ps == net.rotation_ps // 64


def test_single_packet_waits_for_token(net, sim):
    p = Packet(0, 1, 64)
    net.inject(p)
    sim.run()
    # token starts at snake position 0 == site 0, so the grant is
    # immediate; 64 B at 320 GB/s = 0.2 ns + 2 cm flight
    assert p.t_deliver == 200 + 200


def test_far_requester_waits_for_token_travel(net, sim):
    # site 7 is snake position 7: the token takes 7 hops to reach it
    p = Packet(7, 1, 64)
    net.inject(p)
    sim.run()
    expected = 7 * net.hop_ps + 200 + net.propagation_ps(7, 1)
    assert p.t_deliver == expected


def test_token_reacquisition_costs_full_rotation(net, sim):
    """After a send, the same site must wait a full round trip — the
    80-cycle penalty that ruins one-to-one patterns (section 6.1)."""
    p1 = Packet(0, 1, 64)
    p2 = Packet(0, 1, 64)
    net.inject(p1)
    net.inject(p2)
    sim.run()
    gap = p2.t_deliver - p1.t_deliver
    # a full rotation (64 hops) must pass between the two grants
    assert gap >= 64 * net.hop_ps


def test_different_destinations_have_independent_tokens(net, sim):
    p1 = Packet(0, 1, 64)
    p2 = Packet(0, 2, 64)
    net.inject(p1)
    net.inject(p2)
    sim.run()
    # both grants are immediate: separate tokens, no reacquisition
    assert abs(p1.t_deliver - p2.t_deliver) <= abs(
        net.propagation_ps(0, 1) - net.propagation_ps(0, 2))


def test_contending_sites_served_in_ring_order(net, sim):
    pa = Packet(5, 1, 64)
    pb = Packet(2, 1, 64)
    net.inject(pa)
    net.inject(pb)
    sim.run()
    # the token circulates forward from position 0: site 2 (snake pos 2)
    # is reached before site 5
    assert pb.t_deliver < pa.t_deliver


def test_all_packets_eventually_delivered(net, sim):
    delivered = []
    net.set_sink(delivered.append)
    for src in range(8):
        for _ in range(3):
            net.inject(Packet(src, 9, 64))
    sim.run()
    assert len(delivered) == 24


def test_token_position_closed_form(net):
    tok = net._token(1)
    pos, at = net._token_position_at(tok, 10 * net.hop_ps)
    assert pos == 10 % 64
    assert at == 10 * net.hop_ps


def test_stats_account_packets(net, sim):
    net.inject(Packet(0, 1, 64))
    sim.run()
    assert net.stats.delivered_packets == 1


def test_closer_late_request_preempts_scheduled_grant(net, sim):
    """A request posted while the token is in flight, at a site the token
    reaches first, is served first — the token is physically diverted by
    whichever waiting sender it passes."""
    far = Packet(40, 1, 64)   # snake position far from the start
    near = Packet(2, 1, 64)   # close to the token's starting position

    sim.at(0, net.inject, far)
    # inject the near request shortly after, before the token has
    # traveled past snake position 2
    sim.at(net.hop_ps, net.inject, near)
    sim.run()
    assert near.t_deliver < far.t_deliver


def test_release_guard_does_not_starve_other_sites(net, sim):
    """After site A releases the token, queued traffic from B must be
    served without waiting for A's full-rotation reacquisition."""
    a1 = Packet(0, 1, 64)
    a2 = Packet(0, 1, 64)
    b = Packet(3, 1, 64)
    sim.at(0, net.inject, a1)
    sim.at(0, net.inject, a2)
    sim.at(500, net.inject, b)  # arrives after a1's grant
    sim.run()
    # b (3 hops away) is served long before a2's full-rotation wait
    assert b.t_deliver < a2.t_deliver


def test_contended_destination_drains_in_waves(paper_config):
    """Regression: grant selection must pick the earliest-reachable
    waiter, not blindly the ring-order-first one (which can be the
    releasing site carrying a full-rotation penalty).  16 sites sending
    4 packets each to one destination drain in ~4 ring waves; steady
    arrivals must not inflate that."""
    from repro.core.engine import Simulator

    sim = Simulator()
    net = TokenRingCrossbar(paper_config, sim)
    packets = []
    for src in range(1, 17):
        for k in range(4):
            p = Packet(src, 0, 64)
            packets.append(p)
            # stagger arrivals so rescheduling happens while in flight
            sim.at(k * 100, net.inject, p)
    sim.run()
    makespan = max(p.t_deliver for p in packets)
    # ~4 waves around the ring, each roughly one rotation plus grant
    # overheads; the faulty selection needed tens of rotations
    assert makespan < 7 * net.rotation_ps
