"""Tests for coherence operation records and message plans."""

import pytest

from repro.cpu.coherence import (
    CoherenceOp,
    LineState,
    OpKind,
    message_plan,
)

CTRL = 8
DATA = 72
DIR_CYC = 10
MEM_CYC = 50


def plan(op):
    return message_plan(op, CTRL, DATA, DIR_CYC, MEM_CYC)


def op(kind, requester=0, home=1, owner=None, sharers=()):
    return CoherenceOp(core=0, gap_cycles=5, kind=kind, requester=requester,
                       home=home, owner=owner, sharers=sharers)


class TestValidation:
    def test_gets_with_sharers_rejected(self):
        with pytest.raises(ValueError):
            op(OpKind.GET_S, sharers=(2,))

    def test_self_owner_rejected(self):
        with pytest.raises(ValueError):
            op(OpKind.GET_S, requester=0, owner=0)


class TestGetS:
    def test_memory_supply(self):
        steps = plan(op(OpKind.GET_S))
        assert len(steps) == 2
        req, data = steps
        assert (req.src, req.dst, req.size_bytes) == (0, 1, CTRL)
        assert (data.src, data.dst, data.size_bytes) == (1, 0, DATA)
        assert data.depends_on == 0
        assert data.extra_delay_cycles == DIR_CYC + MEM_CYC
        assert data.completes

    def test_cache_to_cache(self):
        steps = plan(op(OpKind.GET_S, owner=5))
        assert len(steps) == 3
        req, fwd, data = steps
        assert (fwd.src, fwd.dst) == (1, 5)
        assert fwd.extra_delay_cycles == DIR_CYC  # no memory access
        assert (data.src, data.dst) == (5, 0)
        assert data.depends_on == 1
        assert data.completes


class TestGetM:
    def test_no_sharers_memory_supply(self):
        steps = plan(op(OpKind.GET_M))
        assert len(steps) == 2
        assert steps[1].completes

    def test_sharers_fan_out(self):
        steps = plan(op(OpKind.GET_M, sharers=(2, 3, 4)))
        invs = [s for s in steps if s.kind == "inv"]
        acks = [s for s in steps if s.kind == "ack"]
        assert len(invs) == 3 and len(acks) == 3
        for inv in invs:
            assert inv.src == 1  # home broadcasts
            assert inv.depends_on == 0
        for ack in acks:
            assert ack.dst == 0  # collected at the requester
            assert ack.completes
        # data still arrives and completes
        assert steps[-1].kind == "data" and steps[-1].completes

    def test_owner_supply_with_sharers(self):
        steps = plan(op(OpKind.GET_M, owner=7, sharers=(2,)))
        data = steps[-1]
        assert data.src == 7 and data.dst == 0

    def test_completion_count_matches_acks_plus_data(self):
        steps = plan(op(OpKind.GET_M, sharers=(2, 3, 4)))
        assert sum(1 for s in steps if s.completes) == 4


class TestUpgrade:
    def test_permission_only(self):
        steps = plan(op(OpKind.UPGRADE, sharers=(2,)))
        kinds = [s.kind for s in steps]
        assert kinds == ["req", "inv", "ack", "perm"]
        assert all(s.size_bytes == CTRL for s in steps)
        perm = steps[-1]
        assert perm.completes
        assert perm.extra_delay_cycles == DIR_CYC


class TestWriteback:
    def test_single_data_message(self):
        steps = plan(op(OpKind.WRITEBACK))
        assert len(steps) == 1
        wb = steps[0]
        assert (wb.src, wb.dst, wb.size_bytes) == (0, 1, DATA)
        assert wb.kind == "wb"


def test_line_state_enum_members():
    assert {s.value for s in LineState} == {"M", "O", "E", "S", "I"}


class TestPlanProperties:
    """Structural invariants of every message plan."""

    from hypothesis import given, settings, strategies as st

    kinds = st.sampled_from([OpKind.GET_S, OpKind.GET_M, OpKind.UPGRADE,
                             OpKind.WRITEBACK])

    @settings(max_examples=200, deadline=None)
    @given(kind=kinds,
           requester=st.integers(min_value=0, max_value=15),
           home=st.integers(min_value=0, max_value=15),
           owner=st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
           sharers=st.lists(st.integers(min_value=0, max_value=15),
                            max_size=4, unique=True))
    def test_plan_structure(self, kind, requester, home, owner, sharers):
        if owner == requester:
            owner = None
        if kind in (OpKind.GET_S, OpKind.WRITEBACK):
            sharers = []
        if kind is OpKind.WRITEBACK:
            owner = None
        sharers = tuple(s for s in sharers if s != requester)
        try:
            o = op(kind, requester=requester, home=home, owner=owner,
                   sharers=sharers)
        except ValueError:
            return
        steps = plan(o)
        # at least one step completes the operation
        assert any(s.completes for s in steps)
        # dependencies reference strictly earlier steps (acyclic chain)
        for i, step in enumerate(steps):
            if step.depends_on is not None:
                assert 0 <= step.depends_on < i
        # every invalidated sharer gets exactly one inv and one ack
        invs = [s.dst for s in steps if s.kind == "inv"]
        acks = [s.src for s in steps if s.kind == "ack"]
        assert sorted(invs) == sorted(sharers)
        assert sorted(acks) == sorted(sharers)
        # data (if any) ends at the requester
        for s in steps:
            if s.kind == "data":
                assert s.dst == requester
