"""Shared fixtures for the test suite.

Most tests run on a 4x4 macrochip (16 sites) — every mechanism in the
networks and the coherence stack is exercised identically at that scale,
at a fraction of the simulation cost of the paper's 8x8 configuration.
Tests that check paper-exact numbers (Tables 5/6, link budgets) use the
full scaled configuration explicitly.
"""

import pytest

from repro.core.engine import Simulator
from repro.macrochip.config import MacrochipConfig, scaled_config, small_test_config


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def small_config() -> MacrochipConfig:
    return small_test_config(4, 4)


@pytest.fixture
def paper_config() -> MacrochipConfig:
    return scaled_config()
