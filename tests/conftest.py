"""Shared fixtures for the test suite.

Most tests run on a 4x4 macrochip (16 sites) — every mechanism in the
networks and the coherence stack is exercised identically at that scale,
at a fraction of the simulation cost of the paper's 8x8 configuration.
Tests that check paper-exact numbers (Tables 5/6, link budgets) use the
full scaled configuration explicitly.

Also provides the shared harness for the invariant-checking tests
(`tests/test_invariants.py`, `tests/test_engine.py`): seeded random
traffic generation and a one-call "build network, attach invariant
monitor, inject, drain" runner that works uniformly across all network
architectures.
"""

import random
from typing import List, Optional, Tuple

import pytest

from repro.core.engine import Simulator
from repro.core.invariants import InvariantMonitor
from repro.macrochip.config import MacrochipConfig, scaled_config, small_test_config
from repro.networks.base import Packet
from repro.networks.factory import build_network

#: (delay_ps, src, dst, size_bytes) injection plan entry
Traffic = List[Tuple[int, int, int, int]]


def random_traffic(seed: int, num_sites: int, n_packets: int = 120,
                   max_delay_ps: int = 40_000,
                   sizes: Tuple[int, ...] = (8, 64, 72)) -> Traffic:
    """A seeded random injection plan: arbitrary times, sources and
    destinations (self-traffic included — it must ride the loopback)."""
    rng = random.Random(seed)
    return [(rng.randrange(max_delay_ps), rng.randrange(num_sites),
             rng.randrange(num_sites), rng.choice(sizes))
            for _ in range(n_packets)]


def run_traced(network_key: str, config: MacrochipConfig, traffic: Traffic,
               network_kwargs: Optional[dict] = None,
               network_cls=None):
    """Build a network with an attached :class:`InvariantMonitor`, inject
    ``traffic``, run to full drain, and return ``(net, monitor, packets)``.

    ``network_cls`` overrides the factory lookup — the mutation smoke
    tests pass deliberately broken subclasses through the same harness.
    """
    sim = Simulator()
    if network_cls is not None:
        net = network_cls(config, sim, **(network_kwargs or {}))
    else:
        net = build_network(network_key, config, sim,
                            **(network_kwargs or {}))
    monitor = InvariantMonitor(net)
    packets = []
    for delay, src, dst, size in traffic:
        p = Packet(src, dst, size)
        packets.append(p)
        sim.at(delay, net.inject, p)
    sim.run()
    return net, monitor, packets


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def small_config() -> MacrochipConfig:
    return small_test_config(4, 4)


@pytest.fixture
def paper_config() -> MacrochipConfig:
    return scaled_config()
