"""Tests for the limited point-to-point network with electronic routing."""

import pytest

from repro.networks.base import Packet
from repro.networks.limited_point_to_point import LimitedPointToPointNetwork


@pytest.fixture
def net(paper_config, sim):
    return LimitedPointToPointNetwork(paper_config, sim)


def test_channel_is_20gb_per_s(net):
    # section 4.6: 20 GB/s direct channels to row/column peers
    assert net.channel_gb_per_s == pytest.approx(20.0)
    assert net.channel_wavelengths == 8


def test_peer_relation(net):
    assert net.is_peer(0, 7)  # same row
    assert net.is_peer(0, 56)  # same column
    assert not net.is_peer(0, 9)  # diagonal
    assert not net.is_peer(5, 5)  # self


def test_forwarder_candidates_are_peers_of_both(net):
    a, b = net.forwarder_candidates(0, 9)  # (0,0) -> (1,1)
    assert {a, b} == {1, 8}
    for via in (a, b):
        assert net.is_peer(0, via)
        assert net.is_peer(via, 9)


def test_direct_channel_refused_for_non_peers(net):
    with pytest.raises(ValueError):
        net.channel(0, 9)


def test_peer_traffic_is_single_hop(net, sim):
    delivered = []
    net.set_sink(delivered.append)
    p = Packet(0, 7, 64)
    net.inject(p)
    sim.run()
    # 64 B at 20 GB/s = 3.2 ns + 7 sites x 2 cm = 1.4 ns flight
    assert p.t_deliver == 3200 + 1400
    assert p.hops == 1
    assert net.direct_packets == 1
    assert net.forwarded_packets == 0


def test_non_peer_traffic_takes_one_electronic_hop(net, sim):
    p = Packet(0, 9, 64)
    net.inject(p)
    sim.run()
    assert p.hops == 2
    assert net.forwarded_packets == 1
    # two optical legs + the router/conversion latency
    expected = 2 * (3200 + 200) + net.router_latency_ps
    assert p.t_deliver == expected


def test_forwarded_packet_charged_router_energy(net, sim):
    net.inject(Packet(0, 9, 64))
    sim.run()
    # 64 B x 60 pJ/B = 3840 pJ
    assert net.stats.energy.get("router") == pytest.approx(3840.0)


def test_direct_packet_not_charged_router_energy(net, sim):
    net.inject(Packet(0, 7, 64))
    sim.run()
    assert net.stats.energy.get("router") == 0.0


def test_adaptive_forwarder_avoids_busy_leg(net, sim):
    # clog the channel 0 -> 1 so the 0 -> 8 -> 9 route is preferred
    for _ in range(50):
        net.inject(Packet(0, 1, 64))
    p = Packet(0, 9, 64)
    net.inject(p)
    sim.run()
    # the packet must still arrive, and faster than behind the clog
    assert p.t_deliver < 50 * 3200


def test_conversion_overhead_configurable(paper_config, sim):
    net = LimitedPointToPointNetwork(paper_config, sim,
                                     conversion_overhead_cycles=0)
    assert net.router_latency_ps == paper_config.cycles_ps(1)


def test_every_pair_is_reachable(net, sim):
    delivered = []
    net.set_sink(delivered.append)
    for dst in range(1, 64):
        net.inject(Packet(0, dst, 64))
    sim.run()
    assert len(delivered) == 63
