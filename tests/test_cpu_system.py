"""Tests for the trace-driven CPU simulator."""

from typing import Iterator, List

import pytest

from repro.cpu.coherence import OpKind
from repro.cpu.system import CpuSimulator, generate_trace
from repro.cpu.trace import MemoryRef
from repro.macrochip.config import small_test_config
from repro.workloads.kernels._base import line_addr


class ScriptedKernel:
    """A kernel whose per-core streams are given explicitly."""

    name = "scripted"

    def __init__(self, streams):
        self._streams = streams

    def core_streams(self, config):
        n = config.num_cores
        return [iter(self._streams.get(core, [])) for core in range(n)]


@pytest.fixture
def cfg():
    return small_test_config(2, 2)  # 4 sites x 8 cores


def ref(addr, write=False, gap=1):
    return MemoryRef(gap, addr, write)


def test_cold_read_is_gets(cfg):
    addr = line_addr(1, 0, cfg.num_sites)
    trace = generate_trace(ScriptedKernel({0: [ref(addr)]}), cfg)
    ops = trace.ops_by_core[0]
    assert len(ops) == 1
    assert ops[0].kind is OpKind.GET_S
    assert ops[0].requester == 0
    assert ops[0].home == 1
    assert ops[0].owner is None


def test_second_access_hits_no_op(cfg):
    addr = line_addr(1, 0, cfg.num_sites)
    trace = generate_trace(ScriptedKernel({0: [ref(addr), ref(addr)]}), cfg)
    assert len(trace.ops_by_core[0]) == 1
    assert trace.l2_misses == 1
    assert trace.total_references == 2


def test_cold_write_is_getm(cfg):
    addr = line_addr(1, 0, cfg.num_sites)
    trace = generate_trace(ScriptedKernel({0: [ref(addr, write=True)]}), cfg)
    assert trace.ops_by_core[0][0].kind is OpKind.GET_M


def test_cross_site_read_finds_remote_owner(cfg):
    """A line written by site 0's core and then read by site 1's core is
    supplied cache-to-cache by site 0."""
    addr = line_addr(2, 0, cfg.num_sites)
    core_site1 = cfg.cores_per_site  # first core of site 1
    trace = generate_trace(ScriptedKernel({
        0: [ref(addr, write=True, gap=1)],
        core_site1: [ref(addr, gap=100)],  # later in virtual time
    }), cfg)
    read_op = trace.ops_by_core[core_site1][0]
    assert read_op.kind is OpKind.GET_S
    assert read_op.owner == 0


def test_write_after_remote_readers_invalidates_them(cfg):
    addr = line_addr(3, 0, cfg.num_sites)
    c1 = cfg.cores_per_site  # site 1
    c2 = 2 * cfg.cores_per_site  # site 2
    trace = generate_trace(ScriptedKernel({
        0: [ref(addr, gap=1)],
        c1: [ref(addr, gap=50)],
        c2: [ref(addr, write=True, gap=200)],
    }), cfg)
    write_op = trace.ops_by_core[c2][0]
    assert write_op.kind is OpKind.GET_M
    covered = set(write_op.sharers)
    if write_op.owner is not None:
        covered.add(write_op.owner)
    assert covered == {0, 1}


def test_write_to_shared_line_is_upgrade(cfg):
    addr = line_addr(1, 0, cfg.num_sites)
    c1 = cfg.cores_per_site
    trace = generate_trace(ScriptedKernel({
        0: [ref(addr, gap=1)],
        c1: [ref(addr, gap=50), ref(addr, write=True, gap=100)],
    }), cfg)
    ops = trace.ops_by_core[c1]
    assert [o.kind for o in ops] == [OpKind.GET_S, OpKind.UPGRADE]


def test_silent_exclusive_to_modified_upgrade(cfg):
    """A write hit on a line this site holds Exclusive produces no
    network operation."""
    addr = line_addr(1, 0, cfg.num_sites)
    trace = generate_trace(ScriptedKernel({
        0: [ref(addr, gap=1), ref(addr, write=True, gap=2)],
    }), cfg)
    assert [o.kind for o in trace.ops_by_core[0]] == [OpKind.GET_S]


def test_dirty_eviction_emits_writeback(cfg):
    """Filling a set with dirty lines forces a writeback op."""
    sim = CpuSimulator(cfg)
    cache = sim.caches[0]
    ways = cache.ways
    # find addresses all mapping to one (hashed) set of site 0's cache
    target = cache.set_index(0)
    addrs, line = [0], 1
    while len(addrs) < ways + 1:
        addr = line * cache.line_bytes
        if cache.set_index(addr) == target:
            addrs.append(addr)
        line += 1
    refs = [ref(a, write=True, gap=1) for a in addrs]
    trace = sim.run(ScriptedKernel({0: refs}))
    kinds = [o.kind for o in trace.ops_by_core[0]]
    assert OpKind.WRITEBACK in kinds


def test_gap_cycles_accumulate_compute_time(cfg):
    a1 = line_addr(1, 0, cfg.num_sites)
    a2 = line_addr(1, 64, cfg.num_sites)
    trace = generate_trace(ScriptedKernel({
        0: [ref(a1, gap=10), ref(a2, gap=30)],
    }), cfg)
    ops = trace.ops_by_core[0]
    assert ops[0].gap_cycles == 10
    assert ops[1].gap_cycles >= 30  # includes nominal miss time


def test_miss_rate_accounting(cfg):
    addr = line_addr(1, 0, cfg.num_sites)
    trace = generate_trace(ScriptedKernel({
        0: [ref(addr, gap=9), ref(addr, gap=9)],
    }), cfg)
    # 1 miss over 20 instructions
    assert trace.miss_rate == pytest.approx(1 / 20)


def test_stream_count_must_match_cores(cfg):
    class BadKernel:
        name = "bad"

        def core_streams(self, config):
            return [iter([])]

    with pytest.raises(ValueError):
        generate_trace(BadKernel(), cfg)


def test_kind_histogram(cfg):
    addr = line_addr(1, 0, cfg.num_sites)
    trace = generate_trace(ScriptedKernel({0: [ref(addr)]}), cfg)
    assert trace.kind_histogram() == {"GetS": 1}
