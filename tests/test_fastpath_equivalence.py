"""Differential tests locking the PR 3 hot-path optimizations down.

The optimized simulation core must be *observationally identical* to the
reference behavior it replaced:

* the engine's hookless fast dispatch loop vs the traced loop — same
  dispatch order, proven by byte-identical canonical traces;
* the sweep harness's block-prefetched RNG draws (``rng_block > 0``) vs
  the legacy one-call-per-packet path (``rng_block=0``) — bit-identical
  :class:`~repro.core.sweep.LoadPointResult` records, including the
  exact ``events_dispatched`` count;
* the per-network precomputed routing/latency tables vs the original
  per-packet arithmetic — covered transitively: both comparisons above
  run the table-driven networks, and the golden Figure 6 pins
  (:mod:`tests.test_golden_figure6`) freeze their absolute numbers;
* (PR 4) the checkpointed adaptive executor with both stop rules
  disabled vs the single-shot ``sim.run(until_ps=horizon)`` call —
  slicing one horizon into many ``run()`` calls must dispatch identical
  events in identical order, proven by byte-identical canonical traces
  and exact ``LoadPointResult`` equality.

Every network architecture is exercised at two load points: one well
below saturation and one near or past the knee, where queues are deep
and arbitration actually bites.
"""

import pytest

from repro.core.adaptive import AdaptiveConfig
from repro.core.engine import Simulator
from repro.core.sweep import run_load_point
from repro.core.tracing import TraceRecorder
from repro.core.vectorized import (fallback_networks, have_numpy,
                                   vectorized_networks)
from repro.macrochip.config import small_test_config
from repro.networks.base import Packet
from repro.networks.factory import build_network
from repro.workloads.synthetic import UniformTraffic, make_pattern

from .conftest import random_traffic

CFG = small_test_config(4, 4)

#: (network key, low load, high load) — the high points sit near each
#: architecture's Figure 6 knee so contention paths are exercised
NETWORK_LOADS = [
    ("point_to_point", 0.05, 0.60),
    ("limited_point_to_point", 0.05, 0.40),
    ("token_ring", 0.05, 0.30),
    ("two_phase", 0.02, 0.08),
    ("circuit_switched", 0.01, 0.03),
    ("hermes", 0.05, 0.30),
]

NETWORKS = [key for key, _, _ in NETWORK_LOADS]

LOAD_POINTS = [(key, load)
               for key, low, high in NETWORK_LOADS
               for load in (low, high)]


def _canonical_trace(network: str, load: float, **kwargs) -> bytes:
    rec = TraceRecorder()
    run_load_point(network, CFG, UniformTraffic(CFG.layout), load,
                   window_ns=80.0, seed=7, tracer=rec, **kwargs)
    return b"\n".join(line.encode() for line in rec.canonical_lines())


@pytest.mark.parametrize("network,load", LOAD_POINTS)
def test_canonical_trace_identical_batched_vs_reference(network, load):
    """The batched-RNG fast path and the legacy per-packet path must
    emit byte-identical canonical traces: every injection, enqueue,
    grant, transmission and delivery at the same picosecond in the same
    order."""
    fast = _canonical_trace(network, load)
    reference = _canonical_trace(network, load, rng_block=0)
    assert len(fast) > 0
    assert fast == reference


@pytest.mark.parametrize("network,load", LOAD_POINTS)
def test_run_load_point_bit_identical_across_block_sizes(network, load):
    """LoadPointResult is a pure function of its arguments; the RNG
    prefetch block size must not leak into a single field — latencies
    are compared exactly, not approximately."""
    results = [run_load_point(network, CFG, UniformTraffic(CFG.layout),
                              load, window_ns=80.0, seed=7,
                              rng_block=block)
               for block in (0, 1, 7, 64, 1024)]
    baseline = results[0]
    assert baseline.events_dispatched > 0
    for other in results[1:]:
        assert other == baseline


@pytest.mark.parametrize("network,load", LOAD_POINTS)
def test_adaptive_disabled_bit_identical_to_single_shot(network, load):
    """The checkpointed executor with both stop rules off is a pure
    re-slicing of the legacy run: every LoadPointResult field — latency
    floats, event counts, stop reason, final clock — must match
    exactly."""
    pattern = UniformTraffic(CFG.layout)
    legacy = run_load_point(network, CFG, pattern, load,
                            window_ns=80.0, seed=7)
    sliced = run_load_point(network, CFG, pattern, load,
                            window_ns=80.0, seed=7,
                            adaptive=AdaptiveConfig().disabled())
    assert sliced == legacy


@pytest.mark.parametrize("network,load", LOAD_POINTS)
def test_canonical_trace_identical_adaptive_disabled_vs_single_shot(
        network, load):
    """Same contract at event granularity: slicing the horizon into
    checkpoints must not reorder or displace a single dispatched
    event."""
    single_shot = _canonical_trace(network, load)
    sliced = _canonical_trace(network, load,
                              adaptive=AdaptiveConfig().disabled())
    assert len(sliced) > 0
    assert sliced == single_shot


@pytest.mark.parametrize("network", NETWORKS)
def test_traced_engine_loop_matches_fast_loop(network):
    """Attaching an engine-level trace hook forces run() through the
    slow dispatch loop; the network-level trace it produces must be
    byte-identical to the fast loop's."""

    def one_run(engine_hook: bool) -> bytes:
        sim = Simulator()
        net = build_network(network, CFG, sim)
        rec = TraceRecorder()
        net.set_tracer(rec)
        if engine_hook:
            sim.trace = lambda t, fn, args: None
        for delay, src, dst, size in random_traffic(31, CFG.num_sites,
                                                    n_packets=150):
            sim.at(delay, net.inject, Packet(src, dst, size))
        sim.run()
        return b"\n".join(line.encode() for line in rec.canonical_lines())

    fast = one_run(engine_hook=False)
    traced = one_run(engine_hook=True)
    assert len(fast) > 0
    assert fast == traced


@pytest.mark.parametrize("network", NETWORKS)
def test_at_many_injection_matches_sequential_at(network):
    """Bulk-scheduling a network's initial injections via at_many must
    deliver the same packets at the same times as sequential at()."""
    traffic = random_traffic(77, CFG.num_sites, n_packets=100)

    def one_run(bulk: bool):
        sim = Simulator()
        net = build_network(network, CFG, sim)
        delivered = []
        net.set_sink(lambda p: delivered.append(
            (p.pid is not None, p.src, p.dst, p.size_bytes, p.t_deliver)))
        packets = [Packet(src, dst, size)
                   for _, src, dst, size in traffic]
        if bulk:
            sim.at_many((delay, net.inject, (pkt,))
                        for (delay, _, _, _), pkt in zip(traffic, packets))
        else:
            for (delay, _, _, _), pkt in zip(traffic, packets):
                sim.at(delay, net.inject, pkt)
        events = sim.run()
        return delivered, events, net.stats.delivered_packets

    sequential = one_run(bulk=False)
    bulk = one_run(bulk=True)
    assert sequential == bulk
    assert sequential[2] == len(traffic)


# -- PR 9: vectorized numpy backend -------------------------------------------
#
# The vectorized backend is opt-in (``backend="vectorized"``) and must be
# *observationally identical* to the scalar engine: bit-identical
# LoadPointResult records and byte-identical canonical traces.  Without
# numpy every load point silently falls back to the scalar path, so the
# equality assertions below stay meaningful (if vacuously true) on a
# numpy-less interpreter; the registry test and the skip-marked kernel
# tests document which runs actually exercised the fast path.

needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="numpy not installed (pip install repro[fast])")

#: traffic patterns for the differential matrix — uniform is the random
#: draw-heavy case, transpose the deterministic worst-case permutation
VEC_PATTERNS = ("uniform", "transpose")


def test_vectorized_registry_covers_all_networks():
    """Every network the sweeps drive — HERMES's snoopy broadcast
    included since PR 10 — has a registered kernel, and the deliberate
    fallback list is empty: any future gap is a test failure, not a
    silent slow path."""
    registered = vectorized_networks()
    for key in ("point_to_point", "limited_point_to_point", "token_ring",
                "two_phase", "two_phase_alt", "circuit_switched",
                "electrical_baseline", "hermes"):
        assert key in registered
    assert fallback_networks() == {}


@needs_numpy
@pytest.mark.parametrize("pattern_name", VEC_PATTERNS)
@pytest.mark.parametrize("network,load", LOAD_POINTS)
def test_vectorized_backend_bit_identical(network, load, pattern_name):
    """backend="vectorized" must reproduce every LoadPointResult field
    exactly — latency floats compared bit-for-bit, event counts, stop
    reason, final clock — across all six networks, both sides of the
    knee, and both traffic patterns."""
    pattern = make_pattern(pattern_name, CFG.layout, seed=11)
    scalar = run_load_point(network, CFG, pattern, load,
                            window_ns=80.0, seed=7)
    fast = run_load_point(network, CFG, pattern, load,
                          window_ns=80.0, seed=7, backend="vectorized")
    assert scalar.delivered_packets > 0
    assert fast == scalar


@pytest.mark.parametrize("network,load", LOAD_POINTS)
def test_vectorized_backend_traces_byte_identical(network, load):
    """Tracing under backend="vectorized" must emit byte-identical
    canonical traces.  An attached tracer forces the scalar engine (the
    trace IS the scalar dispatch order), so this locks down the fallback
    seam: requesting the fast backend never perturbs a traced run."""
    scalar = _canonical_trace(network, load)
    fast = _canonical_trace(network, load, backend="vectorized")
    assert len(fast) > 0
    assert fast == scalar


@needs_numpy
@pytest.mark.parametrize("network", NETWORKS)
def test_vectorized_warm_context_reuse_cycle(network):
    """Warm-start contexts survive vectorized runs: alternating load
    points through the same per-process context (low, high, low again)
    must each be bit-identical to a cold scalar run — the kernel's
    network-state reset leaves nothing behind between points."""
    _, low, high = next(r for r in NETWORK_LOADS if r[0] == network)
    pattern = UniformTraffic(CFG.layout)

    def cold_scalar(load):
        return run_load_point(network, CFG, pattern, load,
                              window_ns=80.0, seed=7)

    for load in (low, high, low):
        warm_fast = run_load_point(network, CFG, pattern, load,
                                   window_ns=80.0, seed=7,
                                   warm=True, backend="vectorized")
        assert warm_fast == cold_scalar(load)


# -- PR 10: vectorized adaptive (checkpointed) execution ----------------------
#
# Adaptive runs replay the kernel's delivery arrays through the same stop
# rules the scalar executor evaluates per checkpoint; the decision inputs
# (injected/delivered counters, windowed latency sums, queue-empty tests)
# are recovered exactly, so every LoadPointResult field — including
# ``stop_reason`` and ``stopped_at_ps`` — must be bit-identical.

def _results_equal(a, b):
    """Exact field-wise equality, treating NaN == NaN (aborted points
    have no in-window latencies, and float('nan') != float('nan'))."""
    import dataclasses
    import math
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if (isinstance(x, float) and isinstance(y, float)
                and math.isnan(x) and math.isnan(y)):
            continue
        if x != y:
            return False
    return True


#: stop-rule variants: defaults (conservative), eager (forces the
#: converged/saturated early-stop replay paths), both-off (pure
#: re-slicing, must equal the fixed-window result)
ADAPTIVE_VARIANTS = [
    ("default", lambda: AdaptiveConfig()),
    ("eager", lambda: AdaptiveConfig(min_converge_planned=0, min_batches=2,
                                     min_abort_injected=16,
                                     abort_streak=2)),
    ("disabled", lambda: AdaptiveConfig().disabled()),
]


@needs_numpy
@pytest.mark.parametrize("variant,make_cfg", ADAPTIVE_VARIANTS,
                         ids=[v for v, _ in ADAPTIVE_VARIANTS])
@pytest.mark.parametrize("network,load", LOAD_POINTS)
def test_vectorized_adaptive_bit_identical(network, load, variant,
                                           make_cfg):
    """Checkpointed execution under backend="vectorized" must reproduce
    the scalar adaptive executor exactly: same early-stop decision at
    the same checkpoint, same event count, same latency floats."""
    pattern = UniformTraffic(CFG.layout)
    scalar = run_load_point(network, CFG, pattern, load,
                            window_ns=80.0, seed=7, adaptive=make_cfg())
    fast = run_load_point(network, CFG, pattern, load,
                          window_ns=80.0, seed=7, adaptive=make_cfg(),
                          backend="vectorized")
    assert scalar.events_dispatched > 0
    assert _results_equal(fast, scalar)


@needs_numpy
@pytest.mark.parametrize("network", NETWORKS)
def test_vectorized_adaptive_knee_identical(network):
    """refine_knee threads the backend through every probe, so knee
    location, saturation flags, and probe results must all be identical
    to the scalar walk."""
    from repro.core.adaptive import refine_knee
    _, low, high = next(r for r in NETWORK_LOADS if r[0] == network)
    pattern = UniformTraffic(CFG.layout)
    coarse = [low, (low + high) / 2, high, min(1.0, high * 3)]
    kw = dict(window_ns=80.0, bisections=2, seed=7,
              adaptive=AdaptiveConfig(min_converge_planned=0,
                                      min_batches=2,
                                      min_abort_injected=16,
                                      abort_streak=2))
    scalar = refine_knee(network, CFG, pattern, coarse, **kw)
    fast = refine_knee(network, CFG, pattern, coarse,
                       backend="vectorized", **kw)
    assert fast.knee_fraction == scalar.knee_fraction
    assert fast.knee_offered == scalar.knee_offered
    assert fast.bracket_low == scalar.bracket_low
    assert fast.bracket_high == scalar.bracket_high
    assert fast.skipped_loads == scalar.skipped_loads
    assert len(fast.points) == len(scalar.points)
    for a, b in zip(fast.points, scalar.points):
        assert _results_equal(a, b)


def test_unknown_backend_rejected_with_choices():
    """A bad backend name fails fast, and the message lists the valid
    choices so the caller can self-correct."""
    with pytest.raises(ValueError) as exc:
        run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                       0.05, window_ns=80.0, seed=7, backend="numpy")
    message = str(exc.value)
    assert "numpy" in message
    assert "python" in message and "vectorized" in message
