"""Tests for the static WDM point-to-point network."""

import pytest

from repro.core.engine import Simulator
from repro.macrochip.config import scaled_config
from repro.networks.base import Packet
from repro.networks.point_to_point import PointToPointNetwork


@pytest.fixture
def net(paper_config, sim):
    return PointToPointNetwork(paper_config, sim)


def test_channel_width_is_two_wavelengths(net):
    # 128 transmitters / 64 sites = 2 wavelengths = 5 GB/s (section 4.2)
    assert net.channel_wavelengths == 2
    assert net.channel_gb_per_s == pytest.approx(5.0)


def test_latency_is_serialization_plus_propagation(net, sim):
    delivered = []
    net.set_sink(delivered.append)
    net.inject(Packet(0, 63, 64))
    sim.run()
    # 64 B at 5 GB/s = 12.8 ns; corner-to-corner 28 cm = 2.8 ns
    assert delivered[0].t_deliver == 12800 + 2800


def test_adjacent_sites_fly_faster(net, sim):
    delivered = []
    net.set_sink(delivered.append)
    net.inject(Packet(0, 1, 64))
    sim.run()
    assert delivered[0].t_deliver == 12800 + 200


def test_no_arbitration_on_distinct_pairs(net, sim):
    """Packets between different pairs never queue on each other."""
    delivered = []
    net.set_sink(delivered.append)
    for dst in range(1, 11):
        net.inject(Packet(0, dst, 64))
    sim.run()
    # all serialize in parallel on their own channels: each arrives at
    # 12.8 ns + its own propagation
    for p in delivered:
        assert p.t_deliver == 12800 + net.propagation_ps(0, p.dst)


def test_same_pair_packets_fifo(net, sim):
    delivered = []
    net.set_sink(delivered.append)
    net.inject(Packet(0, 1, 64))
    net.inject(Packet(0, 1, 64))
    sim.run()
    times = sorted(p.t_deliver for p in delivered)
    assert times == [13000, 13000 + 12800]


def test_channels_are_per_direction(net):
    a = net.channel(0, 1)
    b = net.channel(1, 0)
    assert a is not b
    assert net.channel(0, 1) is a  # cached


def test_small_config_channel_width(small_config, sim):
    # 128 Tx / 16 sites = 8 wavelengths = 20 GB/s on the 4x4 test chip
    net = PointToPointNetwork(small_config, sim)
    assert net.channel_gb_per_s == pytest.approx(20.0)


def test_hops_counted_once(net, sim):
    p = Packet(0, 9, 64)
    net.inject(p)
    sim.run()
    assert p.hops == 1
