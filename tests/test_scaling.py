"""Cross-scale property matrix: every contract, every network, three grids.

PR 8's headline deliverable: the determinism and invariant contracts the
repo already enforces at the paper's 8x8 scale are properties of the
*machinery*, not of one grid size — so they must hold verbatim at 4x4 and
16x16 too.  The matrix below parameterizes four contracts over
{4x4, 8x8, 16x16} x all six networks:

* **invariants** — a load point runs clean under
  ``run_load_point(check_invariants=True)`` (causality, conservation,
  no-overlap checks);
* **determinism** — two fresh runs of the same arguments produce
  byte-identical canonical traces and equal results;
* **reset-equals-fresh** — a warm (context-reusing) run is bit-identical
  to a cold one at the same point;
* **fastpath equivalence** — the block-prefetched RNG path
  (``rng_block=256``) matches the legacy one-draw-per-packet path
  (``rng_block=0``) exactly.

Plus closed-form geometry sanity at every scale (snake ring length,
torus distances, HERMES cluster/gateway counts, limited-p2p peer
provisioning) and the analytical scaling study's own unit surface.

Loads are small and windows short: the matrix is 3 x 6 x 4 contracts and
must stay tier-1 fast; the *values* at scale are pinned separately in
``test_golden_figure6.GOLDEN_16``.
"""

import pytest

from repro.core.sweep import clear_draw_banks, run_load_point
from repro.core.parallel import clear_contexts
from repro.core.tracing import TraceRecorder
from repro.experiments.scaling import (
    AXES, LASER_BUDGET_W, MAX_LAUNCH_DBM, SCALING_DIMS, ScalePoint,
    analyze_network, breakpoint_table_text, scaling_sweep,
    simulate_scale_point, wavelength_demand)
from repro.macrochip.config import grid_config
from repro.networks.factory import EXTENDED_NETWORKS, build_network
from repro.photonics.layout import MacrochipLayout
from repro.workloads.synthetic import UniformTraffic

DIMS = (4, 8, 16)
WINDOW_NS = 30.0
SEED = 42

#: modest per-network loads: enough traffic to exercise arbitration
#: state without saturating the slow shared media at 16x16
LOADS = {
    "point_to_point": 0.20,
    "limited_point_to_point": 0.15,
    "token_ring": 0.10,
    "two_phase": 0.04,
    "circuit_switched": 0.01,
    "hermes": 0.10,
}

MATRIX = [(dim, net) for dim in DIMS for net in EXTENDED_NETWORKS]
MATRIX_IDS = ["%dx%d-%s" % (d, d, n) for d, n in MATRIX]


@pytest.fixture(autouse=True)
def _fresh_registries():
    """Cold per-process context/draw-bank registries per test, so the
    warm-vs-cold comparisons construct-then-reuse inside the test."""
    clear_contexts()
    clear_draw_banks()
    yield
    clear_contexts()
    clear_draw_banks()


def _run(network, dim, warm=False, rng_block=256, tracer=None):
    cfg = grid_config(dim)
    return run_load_point(network, cfg, UniformTraffic(cfg.layout),
                          LOADS[network], window_ns=WINDOW_NS, seed=SEED,
                          warm=warm, rng_block=rng_block, tracer=tracer,
                          check_invariants=True)


def _result_tuple(r):
    return (r.injected_packets, r.delivered_packets, r.events_dispatched,
            r.mean_latency_ns, r.throughput_gb_per_s)


# -- the four contracts, over the full matrix --------------------------------


@pytest.mark.parametrize("dim,network", MATRIX, ids=MATRIX_IDS)
def test_invariants_hold_at_scale(dim, network):
    result = _run(network, dim)
    assert result.injected_packets > 0
    assert result.delivered_packets > 0
    assert result.delivered_packets <= result.injected_packets


@pytest.mark.parametrize("dim,network", MATRIX, ids=MATRIX_IDS)
def test_repeated_runs_are_byte_identical(dim, network):
    traces = []
    results = []
    for _ in range(2):
        tracer = TraceRecorder()
        results.append(_result_tuple(_run(network, dim, tracer=tracer)))
        traces.append("\n".join(tracer.canonical_lines()).encode())
    assert traces[0] == traces[1]
    assert results[0] == results[1]


@pytest.mark.parametrize("dim,network", MATRIX, ids=MATRIX_IDS)
def test_warm_reset_equals_fresh(dim, network):
    cold = _result_tuple(_run(network, dim, warm=False))
    # two consecutive warm runs: the second reuses the reset context
    first_warm = _result_tuple(_run(network, dim, warm=True))
    reused = _result_tuple(_run(network, dim, warm=True))
    assert first_warm == cold
    assert reused == cold


@pytest.mark.parametrize("dim,network", MATRIX, ids=MATRIX_IDS)
def test_rng_fastpath_equivalent_at_scale(dim, network):
    blocked = _result_tuple(_run(network, dim, rng_block=256))
    legacy = _result_tuple(_run(network, dim, rng_block=0))
    assert blocked == legacy


# -- closed-form geometry sanity ---------------------------------------------


@pytest.mark.parametrize("dim", DIMS)
def test_snake_ring_length_closed_form(dim):
    layout = MacrochipLayout(rows=dim, cols=dim)
    pitch = layout.site_pitch_cm
    expected = (dim * (dim - 1) * pitch      # horizontal runs
                + (dim - 1) * pitch          # vertical column span
                + 2 * (dim - 1) * pitch)     # perimeter return leg
    assert layout.snake_ring_length_cm() == pytest.approx(expected)


@pytest.mark.parametrize("dim", DIMS)
def test_torus_distances_closed_form(dim):
    layout = MacrochipLayout(rows=dim, cols=dim)
    # wraparound: the site one step "before" site 0 is a single hop away
    far_col = layout.site_at(0, dim - 1)
    assert layout.torus_hop_counts(0, far_col) == (0, 1)
    # antipode: the maximal torus distance is dim//2 + dim//2 hops
    anti = layout.site_at(dim // 2, dim // 2)
    assert layout.torus_hop_counts(0, anti) == (dim // 2, dim // 2)
    assert layout.torus_distance_cm(0, anti) == pytest.approx(
        (dim // 2 + dim // 2) * layout.site_pitch_cm)


@pytest.mark.parametrize("dim", DIMS)
def test_hermes_cluster_counts_closed_form(dim):
    from repro.core.engine import Simulator
    from repro.core.stats import NetworkStats

    cfg = grid_config(dim)
    net = build_network("hermes", cfg, Simulator(), NetworkStats())
    assert net.cluster_size == 4  # 2x2 clusters divide every even grid
    assert net.num_clusters == dim * dim // 4
    # a gateway's global bank splits across the remote clusters
    expected_wl = max(1, cfg.transmitters_per_site
                      // max(1, net.num_clusters - 1))
    assert net.global_wavelengths == expected_wl


@pytest.mark.parametrize("dim", DIMS)
def test_limited_p2p_channel_provisioning_closed_form(dim):
    from repro.core.engine import Simulator
    from repro.core.stats import NetworkStats

    cfg = grid_config(dim)
    net = build_network("limited_point_to_point", cfg, Simulator(),
                        NetworkStats())
    peers = (dim - 1) + (dim - 1)
    expected = max(1, cfg.transmitters_per_site // (peers + 2))
    assert net.channel_wavelengths == expected


# -- the analytical scaling study itself -------------------------------------


def test_scaling_sweep_covers_all_networks_and_dims():
    results = scaling_sweep(max_dim=32)
    assert [r.network for r in results] == list(EXTENDED_NETWORKS)
    for res in results:
        assert tuple(p.dim for p in res.points) == SCALING_DIMS
        for p in res.points:
            assert isinstance(p, ScalePoint)
            assert set(p.failed_axes) <= set(AXES)


def test_analyze_network_is_exact_at_the_paper_point():
    """At 8x8 the study must reproduce Table 5 exactly: no waveguide
    scaling penalty, no signaling penalty, so total extra dB equals the
    component count's own extra loss."""
    from repro.analysis.power import network_power
    from repro.networks.complexity import ALL_COUNTS

    for net in EXTENDED_NETWORKS:
        point = analyze_network(net, 8)
        count = ALL_COUNTS[net](grid_config(8))
        assert point.total_extra_db == pytest.approx(count.extra_loss_db)
        table5 = network_power(count, grid_config(8).tech)
        assert point.laser_power_w == pytest.approx(table5.laser_power_w)
        assert point.feasible


def test_wavelength_demand_closed_forms():
    cfg = grid_config(16)
    assert wavelength_demand("point_to_point", cfg) == (256, 128)
    assert wavelength_demand("limited_point_to_point", cfg) == (32, 128)
    assert wavelength_demand("hermes", cfg) == (63, 128)
    for shared in ("token_ring", "circuit_switched", "two_phase"):
        needed, avail = wavelength_demand(shared, cfg)
        assert needed == 1 and avail == 128


def test_feasibility_thresholds_bind():
    """The axis predicates compare against the documented ceilings."""
    p16 = analyze_network("two_phase", 16)
    assert p16.required_launch_dbm > MAX_LAUNCH_DBM
    assert not p16.pd_budget_ok
    p8 = analyze_network("two_phase", 8)
    assert p8.required_launch_dbm <= MAX_LAUNCH_DBM
    assert p8.laser_power_w <= LASER_BUDGET_W
    assert p8.feasible


def test_analyze_network_rejects_unknown_key():
    with pytest.raises(KeyError, match="unknown network"):
        analyze_network("warp_drive", 8)


def test_breakpoint_table_mentions_every_network():
    text = breakpoint_table_text(max_dim=32)
    for net in EXTENDED_NETWORKS:
        assert net in text
    assert "OVERSUBSCRIBED" in text  # the 32x32 edge-fiber note


def test_simulate_scale_point_runs_at_16x16():
    result = simulate_scale_point("point_to_point", 16, window_ns=20.0)
    assert result.delivered_packets > 0
