"""Tests for statistics collectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.stats import (
    EnergyAccount,
    LatencySample,
    NetworkStats,
    StreamingLatency,
    ThroughputMeter,
    format_ns,
    mean,
)


class TestLatencySample:
    def test_empty(self):
        s = LatencySample()
        assert len(s) == 0
        assert math.isnan(s.mean_ps)
        with pytest.raises(ValueError):
            s.min_ps
        with pytest.raises(ValueError):
            s.percentile_ps(50)

    def test_basic_moments(self):
        s = LatencySample()
        for v in [1000, 2000, 3000]:
            s.add(v)
        assert s.mean_ps == 2000
        assert s.mean_ns == 2.0
        assert s.min_ps == 1000
        assert s.max_ps == 3000
        assert s.max_ns == 3.0

    def test_percentiles_nearest_rank(self):
        s = LatencySample()
        for v in range(1, 101):
            s.add(v)
        assert s.percentile_ps(50) == 50
        assert s.percentile_ps(99) == 99
        assert s.percentile_ps(100) == 100
        assert s.percentile_ps(0) == 1

    def test_percentile_bounds_checked(self):
        s = LatencySample()
        s.add(1)
        with pytest.raises(ValueError):
            s.percentile_ps(101)

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                    max_size=200))
    def test_mean_min_max_match_builtins(self, values):
        s = LatencySample()
        for v in values:
            s.add(v)
        assert s.min_ps == min(values)
        assert s.max_ps == max(values)
        assert s.mean_ps == pytest.approx(sum(values) / len(values))

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                    max_size=100),
           st.floats(min_value=0.0, max_value=100.0))
    def test_percentile_is_a_recorded_value(self, values, pct):
        s = LatencySample()
        for v in values:
            s.add(v)
        assert s.percentile_ps(pct) in values


class TestThroughputMeter:
    def test_warmup_excluded(self):
        m = ThroughputMeter(warmup_ps=1000)
        m.record(500, 64)  # before warmup: ignored
        m.record(1500, 64)
        m.record(2000, 64)
        assert m.bytes == 128
        assert m.packets == 2

    def test_window_end_excludes_drain(self):
        m = ThroughputMeter(warmup_ps=0, window_end_ps=1000)
        m.record(500, 64)
        m.record(1500, 64)  # after the window: ignored
        assert m.bytes == 64

    def test_bytes_per_ns(self):
        m = ThroughputMeter()
        m.record(1000, 100)
        m.record(2000, 100)
        # 200 bytes over 2000 ps -> 100 bytes/ns
        assert m.bytes_per_ns() == pytest.approx(100.0)

    def test_empty_rate_is_zero(self):
        assert ThroughputMeter().bytes_per_ns() == 0.0


class TestEnergyAccount:
    def test_accumulates_by_category(self):
        e = EnergyAccount()
        e.add("optical", 10.0)
        e.add("optical", 5.0)
        e.add("router", 2.5)
        assert e.get("optical") == 15.0
        assert e.get("router") == 2.5
        assert e.get("missing") == 0.0
        assert e.total_pj == 17.5
        assert e.categories() == {"optical": 15.0, "router": 2.5}


class TestNetworkStats:
    def test_deliver_updates_everything(self):
        s = NetworkStats(warmup_ps=0)
        s.on_inject()
        s.on_deliver(now_ps=2000, inject_ps=500, size_bytes=64)
        assert s.injected_packets == 1
        assert s.delivered_packets == 1
        assert s.latency.mean_ps == 1500

    def test_warmup_deliveries_not_in_latency(self):
        s = NetworkStats(warmup_ps=1000)
        s.on_deliver(now_ps=500, inject_ps=100, size_bytes=64)
        assert len(s.latency) == 0
        assert s.delivered_packets == 1

    def test_summary_keys(self):
        s = NetworkStats()
        s.on_inject()
        s.on_deliver(1000, 0, 64)
        summary = s.summary()
        assert summary["injected"] == 1
        assert summary["delivered"] == 1
        assert summary["mean_latency_ns"] == pytest.approx(1.0)

    def test_post_window_deliveries_not_in_latency(self):
        """Latency sampling shares the throughput meter's measurement
        window: drain-phase deliveries (after window_end_ps) count as
        delivered but must not bias mean/p99 latency (the saturated
        load points of Figure 6)."""
        s = NetworkStats(warmup_ps=0, window_end_ps=2000)
        s.on_deliver(now_ps=1500, inject_ps=500, size_bytes=64)   # in window
        s.on_deliver(now_ps=9000, inject_ps=500, size_bytes=64)   # drain
        assert s.delivered_packets == 2
        assert len(s.latency) == 1
        assert s.latency.mean_ps == 1000
        assert s.throughput.packets == 1

    def test_window_end_set_after_construction(self):
        """The sweep harness sets window_end_ps on the throughput meter
        after building the network; latency clamping must follow it."""
        s = NetworkStats(warmup_ps=100)
        s.throughput.window_end_ps = 2000
        s.on_deliver(now_ps=50, inject_ps=0, size_bytes=64)     # warmup
        s.on_deliver(now_ps=2000, inject_ps=0, size_bytes=64)   # boundary
        s.on_deliver(now_ps=2001, inject_ps=0, size_bytes=64)   # drain
        assert len(s.latency) == 1
        assert s.latency.mean_ps == 2000


class TestStreamingLatency:
    def test_empty(self):
        s = StreamingLatency()
        assert len(s) == 0
        assert math.isnan(s.mean_ps)
        with pytest.raises(ValueError):
            s.min_ps
        with pytest.raises(ValueError):
            s.percentile_ps(50)

    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            StreamingLatency(bucket_ps=0)
        with pytest.raises(ValueError):
            StreamingLatency(max_buckets=1)

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 7),
                    min_size=1, max_size=400))
    def test_bit_identical_to_latency_sample_at_unit_buckets(self, values):
        """The default configuration IS LatencySample: same counts, same
        sums, same nearest-rank percentiles, observation for observation."""
        exact = LatencySample()
        streaming = StreamingLatency()  # bucket_ps=1, no cap
        for v in values:
            exact.add(v)
            streaming.add(v)
        assert streaming.count == exact.count
        assert streaming.sum_ps == exact.sum_ps
        assert streaming.mean_ps == exact.mean_ps
        assert streaming.min_ps == exact.min_ps
        assert streaming.max_ps == exact.max_ps
        for pct in (0, 25, 50, 90, 99, 100):
            assert streaming.percentile_ps(pct) == exact.percentile_ps(pct)

    def test_memory_stays_bounded(self):
        s = StreamingLatency(max_buckets=64)
        for v in range(100_000):  # 100k distinct values
            s.add(v)
        assert s.live_buckets <= 64
        assert s.count == 100_000

    def test_coarsening_keeps_exact_moments(self):
        """Count, sum, mean, min, max never degrade — only percentile
        resolution does."""
        s = StreamingLatency(max_buckets=16)
        values = [i * 37 for i in range(10_000)]
        for v in values:
            s.add(v)
        assert s.count == len(values)
        assert s.sum_ps == sum(values)
        assert s.mean_ps == sum(values) / len(values)
        assert s.min_ps == values[0]
        assert s.max_ps == values[-1]
        assert s.bucket_ps > 1  # it really did coarsen

    def test_coarsened_percentiles_are_conservative_lower_bounds(self):
        s = StreamingLatency(max_buckets=32)
        exact = LatencySample()
        values = list(range(0, 50_000, 7))
        for v in values:
            s.add(v)
            exact.add(v)
        for pct in (50, 90, 99):
            lo = s.percentile_ps(pct)
            true = exact.percentile_ps(pct)
            assert lo <= true < lo + s.bucket_ps

    def test_reset_restores_initial_resolution(self):
        s = StreamingLatency(max_buckets=8)
        for v in range(1000):
            s.add(v)
        assert s.bucket_ps > 1
        s.reset()
        assert s.bucket_ps == 1
        assert len(s) == 0 and s.live_buckets == 0

    def test_network_stats_accepts_injected_collector(self):
        """NetworkStats drives either collector through the identical
        windowed on_deliver path — summaries match bit for bit."""
        buffered = NetworkStats(warmup_ps=100, window_end_ps=10_000)
        streaming = NetworkStats(warmup_ps=100, window_end_ps=10_000,
                                 latency=StreamingLatency())
        deliveries = [(50, 10), (150, 40), (5_000, 4_000), (9_999, 1),
                      (10_500, 2)]  # pre-warmup, in-window, post-window
        for now, latency in deliveries:
            for stats in (buffered, streaming):
                stats.on_inject()
                stats.on_deliver(now, now - latency, 64)
        assert isinstance(streaming.latency, StreamingLatency)
        assert streaming.summary() == buffered.summary()
        assert len(streaming.latency) == len(buffered.latency)


def test_mean_helper():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert math.isnan(mean([]))


def test_format_ns():
    assert format_ns(12800) == "12.8 ns"
