"""Tests for the circuit-switched torus adaptation."""

import pytest

from repro.networks.base import Packet
from repro.core.engine import Simulator
from repro.networks.circuit_switched import (
    SWITCH_POINTS_PER_CROSSING,
    CircuitSwitchedTorus,
)


@pytest.fixture
def net(paper_config, sim):
    return CircuitSwitchedTorus(paper_config, sim)


def test_worst_case_path_is_31_switch_hops(net):
    # section 4.5: "The worst case path in the network requires 31
    # optical switch hops" — site 0 to the true torus diagonal (4, 4)
    diagonal = net.config.layout.site_at(4, 4)
    assert net.switch_hops(0, diagonal) == 31


def test_neighbor_path_is_short(net):
    assert net.switch_hops(0, 1) == SWITCH_POINTS_PER_CROSSING - 1


def test_torus_wraparound_used(net):
    # 0 -> 7 is one column hop on the torus
    assert net.switch_hops(0, 7) == net.switch_hops(0, 1)


def test_setup_dominates_small_transfers(net):
    setup = net.setup_latency_ps(0, 9)
    data_tx = 64 * 1000 // 320 // 1000  # ~0.2 ns at 320 GB/s
    assert setup > 20 * data_tx


def test_single_packet_latency(net, sim):
    p = Packet(0, 1, 64)
    net.inject(p)
    sim.run()
    setup = net.setup_latency_ps(0, 1)
    ack = net.ack_latency_ps(0, 1)
    flight = net.ack_latency_ps(0, 1)
    tx = net._rx_port(1).serialization_ps(64)
    assert p.t_deliver == setup + ack + tx + flight


def test_engines_serialize_excess_setups(paper_config, sim):
    net = CircuitSwitchedTorus(paper_config, sim, engines_per_site=1)
    p1 = Packet(0, 1, 64)
    p2 = Packet(0, 2, 64)
    net.inject(p1)
    net.inject(p2)
    sim.run()
    # with one engine the second circuit cannot start until the first
    # completes its data phase
    assert p2.t_deliver > p1.t_deliver + net.setup_latency_ps(0, 2)


def test_parallel_engines_overlap_setups(net, sim):
    """With the default engine count, a handful of circuits from one
    site progress concurrently."""
    packets = [Packet(0, dst, 64) for dst in range(1, 6)]
    for p in packets:
        net.inject(p)
    sim.run()
    times = sorted(p.t_deliver for p in packets)
    serial_bound = sum(net.setup_latency_ps(0, d) for d in range(1, 6))
    assert times[-1] < serial_bound  # clearly overlapped


def test_circuit_count_tracked(net, sim):
    for dst in (1, 2, 3):
        net.inject(Packet(0, dst, 64))
    sim.run()
    assert net.circuits_established == 3


def test_all_pairs_reachable(net, sim):
    delivered = []
    net.set_sink(delivered.append)
    for dst in range(1, 64, 7):
        net.inject(Packet(0, dst, 64))
    sim.run()
    assert len(delivered) == len(range(1, 64, 7))


def test_rx_port_serializes_concurrent_arrivals(paper_config, sim):
    """Two circuits landing at the same destination share its 320 GB/s
    ingress: the data phases serialize."""
    net = CircuitSwitchedTorus(paper_config, sim)
    big = 32_768  # a large transfer so ingress contention is visible
    p1 = Packet(1, 0, big)
    p2 = Packet(2, 0, big)
    net.inject(p1)
    net.inject(p2)
    sim.run()
    first, second = sorted([p1.t_deliver, p2.t_deliver])
    tx = net._rx_port(0).serialization_ps(big)
    assert second - first >= tx // 2


def test_large_transfers_amortize_setup(paper_config, sim):
    """The paper's circuit-switched weakness is *small* transfers; a
    large transfer's per-byte cost approaches the channel rate."""
    net = CircuitSwitchedTorus(paper_config, sim)
    small = Packet(0, 9, 64)
    net.inject(small)
    sim.run()
    sim2 = Simulator()
    net2 = CircuitSwitchedTorus(paper_config, sim2)
    big = Packet(0, 9, 64 * 256)
    net2.inject(big)
    sim2.run()
    small_ns_per_byte = small.t_deliver / 64
    big_ns_per_byte = big.t_deliver / (64 * 256)
    assert big_ns_per_byte < small_ns_per_byte / 20


def test_teardown_frees_engine_after_data(paper_config, sim):
    net = CircuitSwitchedTorus(paper_config, sim, engines_per_site=1)
    p1 = Packet(0, 1, 64)
    p2 = Packet(0, 1, 64)
    net.inject(p1)
    net.inject(p2)
    sim.run()
    # second circuit starts a full setup+data cycle after the first
    cycle = (net.setup_latency_ps(0, 1) + net.ack_latency_ps(0, 1))
    assert p2.t_deliver - p1.t_deliver >= cycle
